// Command suite runs the paper's full factorial experiment (six access
// patterns × four synchronization styles × two I/O intensities, with and
// without prefetching) and prints the per-cell table, the aggregate
// summary the paper reports in its text, and the per-pattern breakdown
// of §V-F.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	rapid "repro"
)

func main() {
	var (
		scale      = flag.String("scale", "paper", "experiment scale: paper, test, or cluster (100k-1M node compact-engine sweep)")
		scaleNodes = flag.String("scale-nodes", "", "comma-separated node counts for -scale cluster (default 100000,250000,500000,1000000)")
		telemetry  = flag.Bool("telemetry", false, "with -scale cluster: attach the windowed telemetry sink (plus a 16-node sample) to the leading prefetch cell and write its time series and sampled trace to -csv")
		chaos      = flag.Bool("chaos", false, "with -scale cluster: run the chaos study instead — claims C1-C5 (fault determinism, zero-value inertness, quorum vs deadlock, prefetch masking, proportional domain kills) plus one chaos cell per size")
		csvDir     = flag.String("csv", "", "directory to write per-figure CSV data")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		simW       = flag.Int("sim-workers", 1, "parallel-kernel workers inside each simulation (1 = serial kernel; results identical at any value)")
		progress   = flag.Bool("progress", false, "report run completions to stderr")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (taken after the suite) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suite:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "suite:", err)
			os.Exit(1)
		}
		// Worker bodies carry pprof labels (run index, config label), so
		// this profile can be sliced per experimental cell. LIFO: stop
		// (and flush) the profile before the file closes.
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	if *scale == "cluster" {
		runCluster(*scaleNodes, *csvDir, *telemetry, *chaos, *progress, *memProf)
		return
	}
	if *telemetry {
		fmt.Fprintln(os.Stderr, "suite: -telemetry only applies to -scale cluster")
		os.Exit(1)
	}
	if *chaos {
		fmt.Fprintln(os.Stderr, "suite: -chaos only applies to -scale cluster")
		os.Exit(1)
	}

	var opts rapid.SuiteOptions
	switch *scale {
	case "paper":
		opts = rapid.PaperScale()
	case "test":
		opts = rapid.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "suite: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	opts.Workers = *workers
	opts.SimWorkers = *simW
	if *progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rrun %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	fmt.Printf("running %d experiment pairs at %s scale...\n\n", 46, *scale)
	s := rapid.RunSuite(opts)
	fmt.Println(s.Table())

	sum := s.Summarize()
	fmt.Println("aggregate summary (compare with the paper's §V text):")
	fmt.Printf("  experiments:                         %d\n", sum.Experiments)
	fmt.Printf("  read-time reduction:                 median %.0f%%, max %.0f%% (paper: 48%%, 88%%)\n",
		sum.ReadReduction.Median(), sum.ReadReduction.Max())
	fmt.Printf("  read-time reduction > 35%%:           %.0f%% of runs (paper: 60%%)\n",
		100*(1-sum.ReadReduction.FractionAtMost(35)))
	fmt.Printf("  hit ratio with prefetching:          min %.2f, median %.2f (paper: all > 0.69, half > 0.86)\n",
		sum.HitRatioPrefetch.Min(), sum.HitRatioPrefetch.Median())
	fmt.Printf("  exec-time reduction:                 median %.0f%%, max %.0f%% (paper: most > 15%%, up to 69%%)\n",
		sum.ExecReduction.Median(), sum.ExecReduction.Max())
	fmt.Printf("  slowdowns under prefetching:         %d (paper: 3, all lfp)\n", sum.Slowdowns)
	fmt.Printf("  sync time increased by prefetching:  %d of %d (paper: usually)\n",
		sum.SyncTimeIncreased, sum.SyncPairs)
	fmt.Printf("  hit-wait time (mean of runs):        %.0f%% below 6 ms, max %.1f ms (paper: 70%% < 6 ms, all < 17 ms)\n",
		100*sum.HitWait.FractionBelow(6), sum.HitWait.Max())
	fmt.Printf("  prefetch action time (mean of runs): %.1f–%.1f ms (paper: 3–31 ms)\n",
		sum.ActionTime.Min(), sum.ActionTime.Max())
	fmt.Printf("  overrun (mean of runs):              %.1f–%.1f ms (paper: 1–25 ms)\n",
		sum.Overrun.Min(), sum.Overrun.Max())
	fmt.Printf("  fuzzy relationships (Pearson r):     exec~read %.2f, exec~hit %.2f, read~hit-wait %.2f\n",
		sum.CorrExecVsRead, sum.CorrExecVsHit, sum.CorrReadVsHitWait)

	fmt.Println("\nper-pattern breakdown (§V-F):")
	for _, kind := range rapid.PatternKinds {
		g := s.ByPattern()[kind]
		fmt.Printf("  %-4s median exec reduction %+6.1f%%, read reduction %+6.1f%%, hit %.3f\n",
			kind, g.Exec.Median(), g.Read.Median(), g.Hit.Median())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "suite:", err)
			os.Exit(1)
		}
		figs := map[string]*rapid.Figure{
			"fig03_read_time.csv":     s.Fig3ReadTime(),
			"fig04_hit_ratio_cdf.csv": s.Fig4HitRatioCDF(),
			"fig05_hit_kinds_cdf.csv": s.Fig5HitKindsCDF(),
			"fig06_read_vs_wait.csv":  s.Fig6ReadVsHitWait(),
			"fig07_disk_response.csv": s.Fig7DiskResponse(),
			"fig08_total_time.csv":    s.Fig8TotalTime(),
			"fig09_sync_time.csv":     s.Fig9SyncTime(),
			"fig10_exec_vs_read.csv":  s.Fig10ExecVsRead(),
			"fig11_exec_vs_hit.csv":   s.Fig11ExecVsHitRatio(),
		}
		for name, fig := range figs {
			path := filepath.Join(*csvDir, name)
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "suite:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("\nwrote %d CSV files to %s\n", len(figs), *csvDir)
	}

	writeMemProfile(*memProf)
}

// runCluster executes the cluster-scale study (-scale cluster): the
// 100k-1M node sweep on the compact engine, the disk-contention knee
// study, and the S1-S4 claim checks — or, with -chaos, the chaos
// study's C1-C5 checks plus one chaos cell per size. Runs are strictly
// serial — each cell's bytes/node is a whole-process heap measurement.
func runCluster(nodesCSV, csvDir string, telemetry, chaos, progress bool, memProf string) {
	opts := rapid.ScaleOptions{Telemetry: telemetry}
	if nodesCSV != "" {
		for _, tok := range strings.Split(nodesCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "suite: bad -scale-nodes entry %q\n", tok)
				os.Exit(1)
			}
			opts.Nodes = append(opts.Nodes, n)
		}
	}
	if progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcell %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	sizes := opts.Nodes
	if len(sizes) == 0 {
		sizes = rapid.DefaultScaleSizes()
	}
	study, verify := "cluster-scale", rapid.VerifyScaleClaims
	if chaos {
		study, verify = "cluster-chaos", rapid.VerifyChaosClaims
	}
	fmt.Printf("running the %s study at %v nodes...\n\n", study, sizes)
	v, sweep := verify(opts)
	fmt.Println(sweep.Table())
	fmt.Println(v.Report())

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "suite:", err)
			os.Exit(1)
		}
		figs := map[string]*rapid.Figure{
			"scale_total_time.csv":     sweep.TotalTime,
			"scale_improvement.csv":    sweep.Improvement,
			"scale_throughput.csv":     sweep.Throughput,
			"scale_bytes_per_node.csv": sweep.BytesPerNode,
			"scale_disk_knee.csv":      sweep.DiskKnee,
		}
		for name, fig := range figs {
			path := filepath.Join(csvDir, name)
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "suite:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("\nwrote %d CSV files to %s\n", len(figs), csvDir)

		if sweep.Telemetry != nil {
			write := func(name string, fn func(io.Writer) error) {
				path := filepath.Join(csvDir, name)
				f, err := os.Create(path)
				if err == nil {
					err = fn(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "suite:", err)
					os.Exit(1)
				}
			}
			write("scale_timeseries.csv", sweep.Telemetry.WriteCSV)
			write("scale_timeseries.json", sweep.Telemetry.WriteJSON)
			if rec := sweep.SampledTrace; rec != nil {
				write("scale_sample.spans", func(w io.Writer) error {
					_, err := rec.WriteTo(w)
					return err
				})
				write("scale_sample.perfetto.json", rec.WritePerfetto)
			}
			fmt.Printf("telemetry: %d windows, sampled nodes %v -> %s\n",
				len(sweep.Telemetry.Windows), sweep.Telemetry.SampleNodes, csvDir)
		}
	}

	writeMemProfile(memProf)
	if failed := v.Failed(); len(failed) > 0 {
		os.Exit(1)
	}
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suite:", err)
		os.Exit(1)
	}
	runtime.GC() // settle retained memory before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "suite:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "suite:", err)
		os.Exit(1)
	}
}
