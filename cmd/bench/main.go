// Command bench runs the repository's figure benchmarks and records the
// results as a JSON perf baseline, so the performance trajectory of the
// simulator is tracked in-repo rather than lost in CI logs.
//
// Each benchmark runs in its own `go test` process by default: the
// suite-backed figure benchmarks share a lazily computed suite within
// one process (deliberately, so `go test -bench=.` doubles as a cheap
// reproduction table), which would misattribute the whole suite's cost
// to whichever benchmark runs first. Isolation charges every figure its
// true cost.
//
// Examples:
//
//	bench                          # all figure benchmarks -> BENCH_<date>.json
//	bench -bench 'Fig08|Fig12'     # just the named figures
//	bench -benchtime 3x -o out.json
//	bench -shared                  # single process, shared caches (fast smoke)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file format of BENCH_<date>.json.
type Baseline struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Label      string   `json:"label,omitempty"`
	Benchtime  string   `json:"benchtime"`
	Isolated   bool     `json:"isolated"`
	Package    string   `json:"package"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		pkg       = flag.String("pkg", ".", "package containing the benchmarks")
		benchRE   = flag.String("bench", ".", "regexp selecting benchmarks to run")
		benchtime = flag.String("benchtime", "1x", "benchtime passed to go test")
		out       = flag.String("o", "", "output file (default BENCH_<date>.json)")
		label     = flag.String("label", "", "free-form label recorded in the baseline")
		shared    = flag.Bool("shared", false, "run all benchmarks in one process (shared lazy caches)")
		dir       = flag.String("C", ".", "directory to run go test from (module root)")
		cpuProf   = flag.String("cpuprofile", "", "write CPU profiles: <path> shared, <path>.<Benchmark> isolated")
		memProf   = flag.String("memprofile", "", "write heap profiles: <path> shared, <path>.<Benchmark> isolated")
	)
	flag.Parse()

	names, err := listBenchmarks(*dir, *pkg, *benchRE)
	if err != nil {
		fatal(err)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no benchmarks match %q in %s", *benchRE, *pkg))
	}

	var results []Result
	if *shared {
		results, err = runBench(*dir, *pkg, *benchRE, *benchtime, *cpuProf, *memProf)
		if err != nil {
			fatal(err)
		}
	} else {
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "bench: %s\n", name)
			// One process per benchmark, so each gets its own profile file.
			rs, err := runBench(*dir, *pkg, "^"+name+"$", *benchtime,
				suffixProfile(*cpuProf, name), suffixProfile(*memProf, name))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			results = append(results, rs...)
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	date := time.Now().Format("2006-01-02")
	b := Baseline{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Label:      *label,
		Benchtime:  *benchtime,
		Isolated:   !*shared,
		Package:    *pkg,
		Benchmarks: results,
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("bench: %d benchmarks -> %s\n", len(results), path)
}

// listBenchmarks asks `go test -list` for the benchmark names matching
// the regexp, without running anything.
func listBenchmarks(dir, pkg, re string) ([]string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-list", re, pkg)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -list: %v\n%s", err, out)
	}
	var names []string
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Benchmark") {
			names = append(names, line)
		}
	}
	sort.Strings(names)
	return names, nil
}

// suffixProfile appends the benchmark name to a profile path, keeping
// per-benchmark profiles apart under the isolated (one process per
// benchmark) mode. Empty stays empty.
func suffixProfile(path, bench string) string {
	if path == "" {
		return ""
	}
	return path + "." + bench
}

// runBench executes one `go test -bench` invocation and parses every
// result line it prints.
func runBench(dir, pkg, re, benchtime, cpuProf, memProf string) ([]Result, error) {
	args := []string{"test", "-run", "^$",
		"-bench", re, "-benchtime", benchtime, "-benchmem"}
	if cpuProf != "" {
		args = append(args, "-cpuprofile", cpuProf)
	}
	if memProf != "" {
		args = append(args, "-memprofile", memProf)
	}
	cmd := exec.Command("go", append(args, pkg)...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s", err, buf.String())
	}
	var results []Result
	for _, line := range strings.Split(buf.String(), "\n") {
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark results in output:\n%s", buf.String())
	}
	return results, nil
}

var (
	benchLineRE  = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	procSuffixRE = regexp.MustCompile(`-\d+$`)
)

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFig08TotalTime  1  123456 ns/op  4.2 some-metric  12 B/op  3 allocs/op
//
// into a Result. Reports ok=false for non-result lines.
func parseBenchLine(line string) (Result, bool) {
	m := benchLineRE.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: procSuffixRE.ReplaceAllString(m[1], ""), Iterations: iters, Metrics: map[string]float64{}}
	fields := strings.Fields(m[3])
	if len(fields)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
