package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	line := "BenchmarkFig08TotalTime-8   \t       1\t1234567890 ns/op\t        48.25 median-exec-reduction-%\t  676247 B/op\t   22779 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkFig08TotalTime" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Iterations != 1 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if r.NsPerOp != 1234567890 {
		t.Fatalf("ns/op = %v", r.NsPerOp)
	}
	if r.BytesPerOp != 676247 || r.AllocsPerOp != 22779 {
		t.Fatalf("mem = %v B/op %v allocs/op", r.BytesPerOp, r.AllocsPerOp)
	}
	if r.Metrics["median-exec-reduction-%"] != 48.25 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseBenchLineNoSuffix(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkSingleRun \t     710\t   8470214 ns/op")
	if !ok || r.Name != "BenchmarkSingleRun" || r.Iterations != 710 || r.NsPerOp != 8470214 {
		t.Fatalf("parse = %+v ok=%v", r, ok)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t7.007s",
		"BenchmarkBroken  not-a-number ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("noise line parsed as result: %q", line)
		}
	}
}
