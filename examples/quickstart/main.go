// Quickstart: run one workload through the RAPID Transit testbed with
// and without prefetching and compare the paper's headline measures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	rapid "repro"
)

func main() {
	// The paper's base configuration: 20 processors, 20 disks, a file of
	// 1 KB blocks interleaved round-robin, 30 ms disk access time, and
	// the global whole-file access pattern — processes cooperate to read
	// every block exactly once, synchronizing after every 10 blocks each.
	cfg := rapid.DefaultConfig(rapid.GW)
	cfg.Sync = rapid.SyncEveryNEach

	fmt.Println("RAPID Transit quickstart — global whole-file read, 20 processes")
	fmt.Println()

	base := rapid.MustRun(cfg)
	fmt.Print(base)
	fmt.Println()

	cfg.Prefetch = true
	pf := rapid.MustRun(cfg)
	fmt.Print(pf)
	fmt.Println()

	fmt.Printf("prefetching changed:\n")
	fmt.Printf("  total execution time   %8.0f ms -> %8.0f ms  (%+.1f%%)\n",
		base.TotalTimeMillis(), pf.TotalTimeMillis(),
		-rapid.PercentReduction(base.TotalTimeMillis(), pf.TotalTimeMillis()))
	fmt.Printf("  average block read     %8.2f ms -> %8.2f ms  (%+.1f%%)\n",
		base.ReadTime.Mean(), pf.ReadTime.Mean(),
		-rapid.PercentReduction(base.ReadTime.Mean(), pf.ReadTime.Mean()))
	fmt.Printf("  cache hit ratio        %8.3f    -> %8.3f\n", base.HitRatio(), pf.HitRatio())
	fmt.Printf("  disk response time     %8.2f ms -> %8.2f ms  (contention)\n",
		base.DiskResponse.Mean(), pf.DiskResponse.Mean())
	fmt.Printf("  mean sync wait         %8.2f ms -> %8.2f ms\n",
		base.SyncTime.Mean(), pf.SyncTime.Mean())
	fmt.Println()
	fmt.Println("Note the paper's central observation: the hit ratio and read time")
	fmt.Println("improve dramatically, but part of the savings converts into longer")
	fmt.Println("synchronization waits rather than completion-time reduction.")
}
