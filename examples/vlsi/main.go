// VLSI: a circuit-simulation workload of the kind the paper's
// introduction motivates ("simulation of large VLSI circuits").
//
// Each of 20 workers owns a region of a large netlist file and
// repeatedly loads fixed-size tiles from its region — the local
// fixed-portion (lfp) pattern — synchronizing with the others after
// each tile (time-step barrier). Because every process prefetches only
// for itself, this is the pattern where the paper found prefetching's
// benefits can be distributed unevenly; the example prints the
// per-process read times so the skew is visible.
//
//	go run ./examples/vlsi
package main

import (
	"fmt"
	"sort"

	rapid "repro"
)

func main() {
	cfg := rapid.DefaultConfig(rapid.LFP)
	cfg.Sync = rapid.SyncPerPortion // barrier after each tile
	cfg.Pattern.PortionLen = 10     // 10-block tiles

	fmt.Println("VLSI tile simulation — 20 workers, private regions, barrier per tile")
	fmt.Println()

	base := rapid.MustRun(cfg)
	cfg.Prefetch = true
	pf := rapid.MustRun(cfg)

	fmt.Printf("total time:    %8.0f ms -> %8.0f ms (%+.1f%%)\n",
		base.TotalTimeMillis(), pf.TotalTimeMillis(),
		-rapid.PercentReduction(base.TotalTimeMillis(), pf.TotalTimeMillis()))
	fmt.Printf("read time:     %8.2f ms -> %8.2f ms\n", base.ReadTime.Mean(), pf.ReadTime.Mean())
	fmt.Printf("sync wait:     %8.2f ms -> %8.2f ms\n", base.SyncTime.Mean(), pf.SyncTime.Mean())
	fmt.Println()

	// Distribution of prefetching benefit across the workers.
	reads := make([]float64, len(pf.PerProc))
	for i, ps := range pf.PerProc {
		reads[i] = ps.ReadTime.Mean()
	}
	sort.Float64s(reads)
	fmt.Printf("per-worker mean read time with prefetching:\n")
	fmt.Printf("  fastest %6.2f ms   median %6.2f ms   slowest %6.2f ms\n",
		reads[0], reads[len(reads)/2], reads[len(reads)-1])
	fmt.Printf("  (slowest/fastest = %.1fx)\n", reads[len(reads)-1]/reads[0])
	fmt.Println()
	fmt.Println("With a barrier after every tile, the job advances at the pace of")
	fmt.Println("the slowest worker each step: a worker that wins fewer prefetch")
	fmt.Println("buffers drags the whole computation, which is how the paper's lfp")
	fmt.Println("experiments sometimes lost time overall despite better average")
	fmt.Println("read times (Fig. 1, §V-B).")
}
