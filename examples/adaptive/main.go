// Adaptive: what happens when the file system does NOT know the future?
//
// The paper's prefetching policies are oracles — the reference strings
// are supplied in advance, to establish an upper bound (§IV-B) — and
// §VI calls for "mechanisms to gain information about the access
// patterns". This example runs that future work: three on-the-fly
// predictors that observe only the demand stream, compared against the
// oracle on a local pattern (vlsi-style tiles) and a global one
// (cooperative scan).
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	rapid "repro"
)

func main() {
	fmt.Println("On-the-fly prefetching without future knowledge")
	fmt.Println()

	predictors := []rapid.PredictorKind{
		rapid.PredictOracle, rapid.PredictOBL, rapid.PredictSEQ, rapid.PredictGAPS,
	}

	for _, pat := range []struct {
		kind rapid.PatternKind
		desc string
	}{
		{rapid.LFP, "local fixed portions (each worker reads its own tiles)"},
		{rapid.GW, "global whole file (workers cooperate on one scan)"},
	} {
		base := run(pat.kind, rapid.PredictOracle, false)
		fmt.Printf("%s — no prefetching: %0.f ms\n", pat.desc, base.TotalTimeMillis())
		for _, pk := range predictors {
			r := run(pat.kind, pk, true)
			wasted := r.Cache.PrefetchesIssued - r.Cache.PrefetchesConsumed
			fmt.Printf("  %-7s total %6.0f ms (%+5.1f%%)  hit %.3f  wasted prefetches %d\n",
				pk, r.TotalTimeMillis(),
				-rapid.PercentReduction(base.TotalTimeMillis(), r.TotalTimeMillis()),
				r.HitRatio(), wasted)
		}
		fmt.Println()
	}

	fmt.Println("SEQ (per-process run detection) recovers most of the oracle's")
	fmt.Println("benefit on local patterns but is blind to global sequentiality,")
	fmt.Println("where each process sees only a scattered subsequence; GAPS, which")
	fmt.Println("watches the merged stream, recovers the global patterns instead —")
	fmt.Println("and neither dominates, which is exactly why the paper's taxonomy")
	fmt.Println("distinguishes local from global perspectives.")
}

func run(kind rapid.PatternKind, pk rapid.PredictorKind, prefetch bool) *rapid.Result {
	cfg := rapid.DefaultConfig(kind)
	cfg.Sync = rapid.SyncEveryNEach
	cfg.Prefetch = prefetch
	cfg.Predictor = pk
	return rapid.MustRun(cfg)
}
