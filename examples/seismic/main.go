// Seismic: a sensor-data analysis workload of the kind the paper's
// introduction motivates ("simulations or analysis of physical
// processes based on sensor data (such as seismic data)").
//
// Twenty workers sweep a large trace file cooperatively — the global
// whole-file pattern — applying a per-block filter whose cost varies
// from nearly free (ingest) to heavy (full migration). The example
// reproduces the §V-C finding: prefetching helps most when computation
// and I/O are balanced, because then the read-ahead genuinely overlaps
// the two.
//
//	go run ./examples/seismic
package main

import (
	"fmt"

	rapid "repro"
)

func main() {
	fmt.Println("Seismic trace analysis — 20 workers, one 2 MB trace over 20 disks")
	fmt.Println()
	fmt.Printf("%-22s %14s %14s %9s %9s\n",
		"per-block processing", "no prefetch", "prefetch", "speedup", "hit ratio")

	for _, stage := range []struct {
		name    string
		compute float64 // mean ms of processing per block
	}{
		{"ingest (0 ms)", 0},
		{"quick-look (10 ms)", 10},
		{"filtering (30 ms)", 30},
		{"migration (60 ms)", 60},
	} {
		cfg := rapid.DefaultConfig(rapid.GW)
		cfg.Sync = rapid.SyncEveryNEach // checkpoint every 10 traces per worker
		cfg.ComputeMean = rapid.Millis(stage.compute)

		base := rapid.MustRun(cfg)
		cfg.Prefetch = true
		pf := rapid.MustRun(cfg)
		cfg.Prefetch = false

		fmt.Printf("%-22s %11.0f ms %11.0f ms %8.2fx %9.3f\n",
			stage.name,
			base.TotalTimeMillis(), pf.TotalTimeMillis(),
			base.TotalTimeMillis()/pf.TotalTimeMillis(),
			pf.HitRatio())
	}

	fmt.Println()
	fmt.Println("When the workers are purely I/O bound the disks are already the")
	fmt.Println("bottleneck and prefetching has little to overlap; as per-block")
	fmt.Println("processing grows, read-ahead hides the disk latency behind the")
	fmt.Println("computation until the job becomes compute-bound and the I/O time")
	fmt.Println("no longer matters (the paper's Fig. 12).")
}
