// Minifs: use the library's reusable parallel file system directly,
// outside the paper's controlled testbed. A simulated ETL job stages
// two datasets onto a 8-disk array and runs twelve workers that merge
// them — showing multiple files, per-client handles, shared caching and
// sequential readahead as an embeddable API.
//
//	go run ./examples/minifs
package main

import (
	"fmt"

	rapid "repro"
)

const (
	disks     = 8
	workers   = 12
	factRows  = 480 // blocks of the fact file
	dimBlocks = 64  // blocks of the dimension file (hot, re-read)
)

func main() {
	fmt.Println("Mini parallel FS — 12 workers merging two files on 8 disks")
	fmt.Println()
	for _, readahead := range []int{0, 2, 4} {
		elapsed, stats := run(readahead)
		fmt.Printf("readahead %d: job finished in %8.0f ms  (hit ratio %.3f, %d disk reads)\n",
			readahead, elapsed.Millis(), stats.hitRatio, stats.served)
	}
	fmt.Println()
	fmt.Println("The dimension file stays cached after the first pass while the")
	fmt.Println("fact file streams through; readahead overlaps each worker's fact")
	fmt.Println("I/O with its join work, so deeper readahead shortens the job")
	fmt.Println("until the disks saturate.")
}

type jobStats struct {
	hitRatio float64
	served   int64
}

func run(readahead int) (rapid.Duration, jobStats) {
	k := rapid.NewKernel()
	fsys := rapid.MustNewFileSystem(k, rapid.FSOptions{
		Disks:           disks,
		DiskProfile:     rapid.FixedDisk(30 * rapid.Millisecond),
		CacheFrames:     dimBlocks + 2*workers, // dimension table + working set
		ReadaheadFrames: 4 * workers,
		Readahead:       readahead,
		Nodes:           workers,
		Memory:          rapid.DefaultMemory(),
	})
	fact, err := fsys.Create("fact", factRows)
	if err != nil {
		panic(err)
	}
	dim, err := fsys.Create("dim", dimBlocks)
	if err != nil {
		panic(err)
	}

	var finish rapid.Time
	for w := 0; w < workers; w++ {
		w := w
		k.Spawn(fmt.Sprintf("worker%d", w), 0, func(p *rapid.Proc) {
			hf := fact.OpenHandle(w)
			hd := dim.OpenHandle(w)
			defer hf.Close()
			defer hd.Close()
			// Each worker owns a contiguous run of fact blocks and joins
			// each against one dimension block.
			per := factRows / workers
			for i := 0; i < per; i++ {
				b := w*per + i
				hf.Read(p, b)
				hd.Read(p, b%dimBlocks)
				p.Advance(5 * rapid.Millisecond) // join work
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	}
	k.Run()
	cs := fsys.CacheStats()
	served, _ := fsys.DiskStats()
	return rapid.Duration(finish), jobStats{hitRatio: cs.HitRatio(), served: served}
}
