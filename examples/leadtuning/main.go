// Leadtuning: explore the minimum prefetch lead (§V-E) — the idea of
// prefetching "well ahead" of the demand stream to cut hit-wait times —
// and see why the paper found it unsatisfying: the hit-wait time falls,
// but the miss ratio climbs so much that reads get slower overall.
//
//	go run ./examples/leadtuning
package main

import (
	"fmt"

	rapid "repro"
)

func main() {
	fmt.Println("Minimum prefetch lead tuning — global whole-file pattern")
	fmt.Println()
	fmt.Printf("%6s %12s %12s %12s %12s\n",
		"lead", "hit-wait", "miss ratio", "read time", "total time")

	cfgFor := func(lead int) rapid.Config {
		cfg := rapid.DefaultConfig(rapid.GW)
		cfg.Sync = rapid.SyncEveryNEach
		cfg.Prefetch = true
		cfg.Lead = lead
		return cfg
	}

	for _, lead := range []int{0, 10, 20, 30, 50, 70, 90} {
		r := rapid.MustRun(cfgFor(lead))
		fmt.Printf("%6d %9.2f ms %12.3f %9.2f ms %9.0f ms\n",
			lead, r.HitWaitAll.Mean(), r.MissRatio(), r.ReadTime.Mean(), r.TotalTimeMillis())
	}

	base := rapid.DefaultConfig(rapid.GW)
	base.Sync = rapid.SyncEveryNEach
	nb := rapid.MustRun(base)
	fmt.Printf("%6s %12s %12.3f %9.2f ms %9.0f ms   (no prefetching)\n",
		"-", "-", nb.MissRatio(), nb.ReadTime.Mean(), nb.TotalTimeMillis())

	fmt.Println()
	fmt.Println("A lead forbids prefetching the blocks the processes will ask for")
	fmt.Println("next, so those become demand misses; the blocks that are")
	fmt.Println("prefetched arrive comfortably early (lower hit-wait), but the")
	fmt.Println("extra misses dominate — the paper's Figs. 13–16.")
}
