// Dbscan: a database workload of the kind the paper's introduction
// motivates ("manipulation of large databases", cf. Boral & DeWitt's
// I/O-bottleneck argument in §II).
//
// Twenty scan operators cooperate on a selective segment scan of a
// relation: the qualifying segments are contiguous runs of pages at
// unpredictable places — the global random-portion (grp) pattern, where
// the prefetcher must not run past a segment boundary until a demand
// fetch establishes the next segment. The example also shows how the
// number of prefetch buffers per operator changes the outcome (§V-F).
//
//	go run ./examples/dbscan
package main

import (
	"fmt"

	rapid "repro"
)

func main() {
	fmt.Println("Parallel selective relation scan — 20 operators, random qualifying segments")
	fmt.Println()

	mk := func(buffers int, prefetch bool) *rapid.Result {
		cfg := rapid.DefaultConfig(rapid.GRP)
		cfg.Sync = rapid.SyncEveryNAll // flow-control every 200 pages total
		cfg.PrefetchBuffersPerProc = buffers
		cfg.Prefetch = prefetch
		return rapid.MustRun(cfg)
	}

	base := mk(3, false)
	fmt.Printf("no prefetching:          %8.0f ms  (read %6.2f ms, hit %.3f)\n",
		base.TotalTimeMillis(), base.ReadTime.Mean(), base.HitRatio())

	for _, buffers := range []int{1, 2, 3, 5} {
		r := mk(buffers, true)
		fmt.Printf("prefetch, %d buf/op:      %8.0f ms  (read %6.2f ms, hit %.3f, %+.1f%%)\n",
			buffers, r.TotalTimeMillis(), r.ReadTime.Mean(), r.HitRatio(),
			-rapid.PercentReduction(base.TotalTimeMillis(), r.TotalTimeMillis()))
	}

	fmt.Println()
	r := mk(3, true)
	fmt.Printf("with 3 buffers/operator: %d pages prefetched, %d demand-fetched,\n",
		r.Cache.PrefetchesIssued, r.Cache.Misses)
	fmt.Printf("%d attempts declined or failed on buffer limits\n",
		r.Cache.FailsGlobalLimit+r.Cache.FailsNodeLimit+r.Cache.FailsNoBuffer)
	fmt.Println()
	fmt.Println("Each segment's first page must be demand-fetched (its location is")
	fmt.Println("unpredictable), then read-ahead streams the rest of the segment —")
	fmt.Println("which is why the hit ratio tracks the mean segment length and why")
	fmt.Println("one prefetch buffer per operator is measurably worse while three")
	fmt.Println("or more are nearly indistinguishable (§V-F).")
}
