package rapid

// One benchmark per figure/experiment of the paper's evaluation, as
// indexed in DESIGN.md. Each benchmark regenerates the corresponding
// figure's data at the paper's full scale (20 processors, 2000 blocks)
// and reports the figure's headline quantity as a custom metric, so
// `go test -bench=.` doubles as a compact reproduction table.
//
// Benchmarks whose figure comes from the factorial suite share one
// suite run per iteration via benchSuite.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

var (
	suiteOnce   sync.Once
	cachedSuite *Suite
)

// benchSuite runs the paper-scale factorial suite once and reuses it:
// the suite is deterministic, so every figure derives from the same
// data, exactly as in the paper.
func benchSuite() *Suite {
	suiteOnce.Do(func() { cachedSuite = RunSuite(PaperScale()) })
	return cachedSuite
}

func BenchmarkFig03ReadTime(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		fig := s.Fig3ReadTime()
		med = s.Summarize().ReadReduction.Median()
		if len(fig.Series[0].Points) != 46 {
			b.Fatal("wrong point count")
		}
	}
	b.ReportMetric(med, "median-read-reduction-%")
}

func BenchmarkFig04HitRatio(b *testing.B) {
	var min float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		_ = s.Fig4HitRatioCDF()
		min = s.Summarize().HitRatioPrefetch.Min()
	}
	b.ReportMetric(min, "min-hit-ratio")
}

func BenchmarkFig05HitKinds(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		fig := s.Fig5HitKindsCDF()
		frac = fig.FindSeries("U (unready hits)").YSample().Mean()
	}
	b.ReportMetric(frac, "mean-unready-cdf-y")
}

func BenchmarkFig06HitWait(b *testing.B) {
	var hw float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		fig := s.Fig6ReadVsHitWait()
		hw = fig.Series[0].Points[0].X
	}
	b.ReportMetric(hw, "first-hit-wait-ms")
}

func BenchmarkFig07DiskResponse(b *testing.B) {
	var worsened float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		fig := s.Fig7DiskResponse()
		above := 0
		for _, p := range fig.Series[0].Points {
			if p.Y > p.X {
				above++
			}
		}
		worsened = float64(above) / float64(len(fig.Series[0].Points))
	}
	b.ReportMetric(worsened, "fraction-worsened")
}

func BenchmarkFig08TotalTime(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		_ = s.Fig8TotalTime()
		med = s.Summarize().ExecReduction.Median()
	}
	b.ReportMetric(med, "median-exec-reduction-%")
}

func BenchmarkFig09SyncTime(b *testing.B) {
	var increased float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		_ = s.Fig9SyncTime()
		sum := s.Summarize()
		increased = float64(sum.SyncTimeIncreased) / float64(sum.SyncPairs)
	}
	b.ReportMetric(increased, "fraction-sync-increased")
}

func BenchmarkFig10ExecVsRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchSuite().Fig10ExecVsRead().Series[0].Points) != 46 {
			b.Fatal("wrong point count")
		}
	}
}

func BenchmarkFig11ExecVsHit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(benchSuite().Fig11ExecVsHitRatio().Series[0].Points) != 46 {
			b.Fatal("wrong point count")
		}
	}
}

func BenchmarkFig12ComputeSweep(b *testing.B) {
	var bestSpeedup float64
	for i := 0; i < b.N; i++ {
		r := ComputeSweep(PaperScale(), []int{0, 10, 20, 30, 40, 50, 60})
		pf := r.TotalTime.FindSeries("prefetch")
		np := r.TotalTime.FindSeries("no prefetch")
		bestSpeedup = 0
		for j := range pf.Points {
			if s := np.Points[j].Y / pf.Points[j].Y; s > bestSpeedup {
				bestSpeedup = s
			}
		}
	}
	b.ReportMetric(bestSpeedup, "best-speedup-x")
}

// leadSweep is shared by the four lead benchmarks (Figs. 13–16); it is
// the most expensive experiment (local patterns read 40 000 blocks).
var (
	leadOnce   sync.Once
	cachedLead *LeadSweepShape
)

// LeadSweepShape mirrors experiment.LeadSweepResult through the façade.
type LeadSweepShape struct {
	HitWait, MissRatio, ReadTime, TotalTime *Figure
}

func benchLead() *LeadSweepShape {
	leadOnce.Do(func() {
		r := LeadSweep(PaperScale(), []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90})
		cachedLead = &LeadSweepShape{
			HitWait: r.HitWait, MissRatio: r.MissRatio,
			ReadTime: r.ReadTime, TotalTime: r.TotalTime,
		}
	})
	return cachedLead
}

func BenchmarkFig13LeadHitWait(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		gw := benchLead().HitWait.FindSeries("gw").Points
		drop = gw[0].Y - gw[len(gw)-1].Y
	}
	b.ReportMetric(drop, "gw-hit-wait-drop-ms")
}

func BenchmarkFig14LeadMissRatio(b *testing.B) {
	var climb float64
	for i := 0; i < b.N; i++ {
		gw := benchLead().MissRatio.FindSeries("gw").Points
		climb = gw[len(gw)-1].Y
	}
	b.ReportMetric(climb, "gw-miss-ratio-at-90")
}

func BenchmarkFig15LeadReadTime(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		gw := benchLead().ReadTime.FindSeries("gw").Points
		ratio = gw[len(gw)-1].Y / gw[0].Y
	}
	b.ReportMetric(ratio, "gw-read-time-growth-x")
}

func BenchmarkFig16LeadTotalTime(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		gw := benchLead().TotalTime.FindSeries("gw").Points
		ratio = gw[len(gw)-1].Y / gw[0].Y
	}
	b.ReportMetric(ratio, "gw-total-time-growth-x")
}

func BenchmarkExpMinPrefetchTime(b *testing.B) {
	var overrunDrop float64
	for i := 0; i < b.N; i++ {
		r := MinPrefetchTimeSweep(PaperScale(), []int{0, 5, 10, 15, 20, 25})
		ov := r.Overrun.Series[0].Points
		overrunDrop = ov[0].Y - ov[len(ov)-1].Y
	}
	b.ReportMetric(overrunDrop, "overrun-drop-ms")
}

func BenchmarkExpBufferCount(b *testing.B) {
	var oneVsThree float64
	for i := 0; i < b.N; i++ {
		f := BufferCountSweep(PaperScale(), []int{1, 2, 3, 4, 5})
		gw := f.FindSeries("gw").Points
		oneVsThree = gw[2].Y - gw[0].Y // improvement gained from 1 -> 3 buffers
	}
	b.ReportMetric(oneVsThree, "gw-gain-1to3-buffers-pp")
}

func BenchmarkExpPatternBreakdown(b *testing.B) {
	var lwMedian float64
	for i := 0; i < b.N; i++ {
		groups := benchSuite().ByPattern()
		lwMedian = groups[LW].Exec.Median()
	}
	b.ReportMetric(lwMedian, "lw-median-exec-reduction-%")
}

func BenchmarkExpFig1Motivation(b *testing.B) {
	var skew float64
	for i := 0; i < b.N; i++ {
		skew = Fig1Motivation(PaperScale().Seed).ReadSkew()
	}
	b.ReportMetric(skew, "per-proc-read-skew-x")
}

// Ablation benches for the design decisions DESIGN.md calls out.

func BenchmarkAblationBufferPolicy(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		global := MustRun(prefetchConfig(LFP, false))
		perNode := MustRun(prefetchConfig(LFP, true))
		penalty = PercentReduction(global.TotalTimeMillis(), perNode.TotalTimeMillis())
	}
	b.ReportMetric(penalty, "per-node-vs-global-%")
}

func BenchmarkAblationFreePrefetch(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		costed := MustRun(prefetchConfig(GW, false))
		cfg := prefetchConfig(GW, false)
		cfg.Memory = FreeMemory()
		free := MustRun(cfg)
		gain = PercentReduction(costed.TotalTimeMillis(), free.TotalTimeMillis())
	}
	b.ReportMetric(gain, "free-overhead-gain-%")
}

func BenchmarkAblationRUSetSize(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		one := MustRun(prefetchConfig(LW, false))
		cfg := prefetchConfig(LW, false)
		cfg.RUSetSize = 4
		four := MustRun(cfg)
		delta = PercentReduction(one.TotalTimeMillis(), four.TotalTimeMillis())
	}
	b.ReportMetric(delta, "ru4-vs-ru1-%")
}

func prefetchConfig(kind PatternKind, perNode bool) Config {
	cfg := DefaultConfig(kind)
	cfg.Sync = SyncEveryNEach
	cfg.Prefetch = true
	cfg.PerNodePrefetchLimit = perNode
	return cfg
}

// BenchmarkSingleRun measures the raw simulator throughput for one
// paper-scale prefetching run (useful when optimizing the kernel).
func BenchmarkSingleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := prefetchConfig(GW, false)
		r := MustRun(cfg)
		if r.Cache.Accesses() != 2000 {
			b.Fatal("wrong access count")
		}
	}
}

// BenchmarkSingleRunParallel is the A/B harness for the parallel
// discrete-event kernel: the paper-scale gw prefetching cell (and its
// I/O-bound variant, whose runtime is dominated by disk events) at 1,
// 2, 4, and 8 simulation workers. workers=1 doubles as the
// allocation-neutrality guard for the serial path — the parallel
// machinery must stay entirely off that path, so its allocs/op are
// comparable against pre-change baselines. events/sec is kernel events
// dispatched per wall-clock second, the PDES literature's throughput
// measure; on a single-core host expect no speedup (the workers
// time-slice one CPU), with the gap to N cores bounded by the
// lookahead model documented in EXPERIMENTS.md.
func BenchmarkSingleRunParallel(b *testing.B) {
	cells := []struct {
		name    string
		ioBound bool
	}{{"balanced", false}, {"iobound", true}}
	for _, cell := range cells {
		for _, w := range []int{1, 2, 4, 8} {
			cell, w := cell, w
			b.Run(fmt.Sprintf("%s/workers=%d", cell.name, w), func(b *testing.B) {
				b.ReportAllocs()
				var events int64
				for i := 0; i < b.N; i++ {
					cfg := prefetchConfig(GW, false)
					if cell.ioBound {
						cfg.ComputeMean = 0
					}
					cfg.SimWorkers = w
					sink := &obs.CounterSink{}
					cfg.Obs = sink
					r := MustRun(cfg)
					if r.Cache.Accesses() != 2000 {
						b.Fatal("wrong access count")
					}
					events = sink.Snapshot()[obs.CtrKernelEvents]
				}
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			})
		}
	}
}

// BenchmarkClusterScale measures the compact engine at cluster scale:
// a 100k-node, 25k-disk prefetching run at the scale sweep's operating
// point (16 blocks/node, disks at 50% utilization). Reports events/sec
// — kernel events dispatched per wall-clock second — and bytes/node,
// the live heap one run retains per node (the budget that makes the
// 1M-node sweep feasible; the goroutine engine's stacks alone are 2
// KB/node).
func BenchmarkClusterScale(b *testing.B) {
	const nodes = 100_000
	b.ReportAllocs()
	var events int64
	var perNode float64
	for i := 0; i < b.N; i++ {
		cfg := ScaleConfig(nodes, nodes/4, true)
		cfg.Pattern.TotalBlocks = 16 * nodes
		cfg.ComputeMean = 7 * cfg.DiskAccess
		sink := &obs.CounterSink{}
		cfg.Obs = sink
		b.StopTimer()
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.StartTimer()
		r := MustRun(cfg)
		b.StopTimer()
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			perNode = float64(after.HeapAlloc-before.HeapAlloc) / nodes
		}
		runtime.KeepAlive(r)
		b.StartTimer()
		events = sink.Snapshot()[obs.CtrKernelEvents]
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(perNode, "bytes/node")
}

// BenchmarkTelemetryOverhead prices the windowed telemetry sink at
// cluster scale: the same 100k-node run as BenchmarkClusterScale with
// no sink, with the windowed sink, and with the windowed sink plus a
// 64-node full-fidelity sample. The telemetry acceptance bar is the
// off→windowed gap staying under 5% of wall clock; compare the arms'
// ns/op (the CI bench A/B step records both sides).
func BenchmarkTelemetryOverhead(b *testing.B) {
	const nodes = 100_000
	arms := []struct {
		name string
		sink func() obs.Sink
	}{
		{"off", func() obs.Sink { return nil }},
		{"windowed", func() obs.Sink {
			return telemetry.New(telemetry.Config{Nodes: nodes, FlightSpans: -1})
		}},
		{"windowed-sampled64", func() obs.Sink {
			return telemetry.New(telemetry.Config{Nodes: nodes, SampleK: 64, FlightSpans: -1})
		}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var windows int
			for i := 0; i < b.N; i++ {
				cfg := ScaleConfig(nodes, nodes/4, true)
				cfg.Pattern.TotalBlocks = 16 * nodes
				cfg.ComputeMean = 7 * cfg.DiskAccess
				sink := arm.sink()
				cfg.Obs = sink
				r := MustRun(cfg)
				runtime.KeepAlive(r)
				if tel, ok := sink.(*telemetry.Sink); ok {
					windows = len(tel.Windows())
					if windows == 0 {
						b.Fatal("telemetry sink saw no windows")
					}
				}
			}
			b.ReportMetric(float64(windows), "windows")
		})
	}
}

// BenchmarkExtPredictorStudy runs the on-the-fly prediction study (the
// paper's §VI future work): oracle vs OBL vs SEQ vs GAPS over all six
// patterns.
func BenchmarkExtPredictorStudy(b *testing.B) {
	var gapsVsOracle float64
	for i := 0; i < b.N; i++ {
		s := RunPredictorStudy(PaperScale())
		gapsVsOracle = s.Row(GW, PredictGAPS).ExecReduction - s.Row(GW, PredictOracle).ExecReduction
	}
	b.ReportMetric(gapsVsOracle, "gw-gaps-minus-oracle-pp")
}

// BenchmarkExtScalability runs the §VI scalability study.
func BenchmarkExtScalability(b *testing.B) {
	var at64 float64
	for i := 0; i < b.N; i++ {
		r := ScalabilitySweep(PaperScale(), []int{4, 8, 16, 32, 64})
		pts := r.Improvement.Series[0].Points
		at64 = pts[len(pts)-1].Y
	}
	b.ReportMetric(at64, "improvement-at-64-procs-%")
}

// BenchmarkExtLayoutStudy runs the block-placement study under the
// seek-charging disk model.
func BenchmarkExtLayoutStudy(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		s := RunLayoutStudy(PaperScale())
		penalty = s.Row(LayoutSegmented, true).TotalMillis / s.Row(LayoutRoundRobin, true).TotalMillis
	}
	b.ReportMetric(penalty, "segmented-vs-roundrobin-x")
}

// BenchmarkExtSchedStudy compares disk queue scheduling policies under
// a seek model.
func BenchmarkExtSchedStudy(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		s := RunSchedStudy(PaperScale())
		gain = s.Row(DiskFIFO).DiskResponse - s.Row(DiskSSTF).DiskResponse
	}
	b.ReportMetric(gain, "sstf-response-gain-ms")
}

// BenchmarkExtHybridStudy measures the hybrid-pattern extension.
func BenchmarkExtHybridStudy(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		red = RunHybridStudy(PaperScale()).HybridReduction
	}
	b.ReportMetric(red, "hybrid-exec-reduction-%")
}

// BenchmarkFig08FaultRate1pct measures the robustness extension: the
// base gw total-time cell (Fig. 8's headline quantity) under a 1%
// injected transient read-error rate, reporting how much of
// prefetching's benefit survives fault recovery.
func BenchmarkFig08FaultRate1pct(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		r := RunFaultSweep(PaperScale(), []float64{0.01})
		red = PercentReduction(r.Base[0].TotalTimeMillis(), r.Pref[0].TotalTimeMillis())
		if r.Base[0].Faults.Disk.Transient == 0 {
			b.Fatal("no faults injected")
		}
	}
	b.ReportMetric(red, "exec-reduction-%-at-1%-faults")
}

// BenchmarkAblationBufferHome isolates the NUMA buffer-placement cost:
// under lw every block is consumed by 19 remote nodes, so zeroing the
// remote-buffer penalty bounds how much placement matters (paper
// footnote 1).
func BenchmarkAblationBufferHome(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		with := MustRun(prefetchConfig(LW, false))
		cfg := prefetchConfig(LW, false)
		cfg.Memory.RemoteBuffer = MemoryCost{}
		without := MustRun(cfg)
		gain = PercentReduction(with.TotalTimeMillis(), without.TotalTimeMillis())
	}
	b.ReportMetric(gain, "local-buffers-gain-%")
}
