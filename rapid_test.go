package rapid

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := DefaultConfig(GW)
	cfg.Procs = 4
	cfg.Disks = 4
	cfg.Pattern.Procs = 4
	cfg.Pattern.TotalBlocks = 80
	base := MustRun(cfg)
	cfg.Prefetch = true
	pf := MustRun(cfg)
	if pf.ReadTime.Mean() >= base.ReadTime.Mean() {
		t.Fatal("prefetching did not improve read time")
	}
	if !strings.Contains(pf.String(), "hit ratio") {
		t.Fatal("result string malformed")
	}
}

func TestRunReturnsConfigError(t *testing.T) {
	cfg := DefaultConfig(GW)
	cfg.Procs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	kind, err := ParsePatternKind("gw")
	if err != nil || kind != GW {
		t.Fatalf("ParsePatternKind: %v %v", kind, err)
	}
	style, err := ParseSyncStyle("each")
	if err != nil || style != SyncEveryNEach {
		t.Fatalf("ParseSyncStyle: %v %v", style, err)
	}
	if len(PatternKinds) != 6 || len(SyncStyles) != 4 {
		t.Fatal("enumerations wrong")
	}
}

func TestDurationHelpers(t *testing.T) {
	if Millis(30) != 30*Millisecond {
		t.Fatal("Millis wrong")
	}
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit constants wrong")
	}
	if PercentReduction(100, 75) != 25 {
		t.Fatal("PercentReduction wrong")
	}
}

func TestPatternHelpers(t *testing.T) {
	cfg := DefaultPattern(LW)
	cfg.Procs = 2
	cfg.BlocksPerProc = 10
	p, err := GeneratePattern(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalReads() != 20 {
		t.Fatalf("reads = %d", p.TotalReads())
	}
}

func TestSuiteAtTinyScale(t *testing.T) {
	opts := TestScale()
	opts.Procs = 4
	opts.TotalBlocks = 80
	opts.BlocksPerProc = 20
	opts.LeadLocalReads = 80
	s := RunSuite(opts)
	if len(s.Pairs) != 46 {
		t.Fatalf("pairs = %d", len(s.Pairs))
	}
	fig := s.Fig8TotalTime()
	out := fig.Render(RenderOptions{Width: 40, Height: 12})
	if !strings.Contains(out, "Fig. 8") {
		t.Fatalf("render: %q", out)
	}
	sum := s.Summarize()
	if sum.Experiments != 46 {
		t.Fatalf("summary experiments = %d", sum.Experiments)
	}
}

func TestFig1MotivationExported(t *testing.T) {
	m := Fig1Motivation(1)
	if m.Report == "" {
		t.Fatal("empty motivation report")
	}
}
