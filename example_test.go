package rapid_test

import (
	"fmt"

	rapid "repro"
)

// The basic flow: configure a run, execute it, read the measures.
func Example() {
	cfg := rapid.DefaultConfig(rapid.GW) // global whole-file pattern
	cfg.Sync = rapid.SyncEveryNEach      // barrier every 10 blocks/process
	base := rapid.MustRun(cfg)

	cfg.Prefetch = true
	pf := rapid.MustRun(cfg)

	fmt.Printf("hit ratio %.2f -> %.2f\n", base.HitRatio(), pf.HitRatio())
	fmt.Printf("faster: %v\n", pf.TotalTime < base.TotalTime)
	// Output:
	// hit ratio 0.00 -> 0.98
	// faster: true
}

// Runs are deterministic: the same configuration always produces the
// same result, event for event.
func ExampleRun_deterministic() {
	cfg := rapid.DefaultConfig(rapid.GRP)
	cfg.Prefetch = true
	a := rapid.MustRun(cfg)
	b := rapid.MustRun(cfg)
	fmt.Println(a.TotalTime == b.TotalTime)
	// Output:
	// true
}

// Patterns can be generated and inspected independently of the engine.
func ExampleGeneratePattern() {
	cfg := rapid.DefaultPattern(rapid.LW)
	cfg.Procs = 4
	cfg.BlocksPerProc = 25
	pat, err := rapid.GeneratePattern(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("file %d blocks, %d total reads\n", pat.FileBlocks, pat.TotalReads())
	// Output:
	// file 25 blocks, 100 total reads
}

// On-the-fly predictors replace the paper's oracle reference strings.
func ExampleConfig_predictor() {
	cfg := rapid.DefaultConfig(rapid.GW)
	cfg.Prefetch = true
	cfg.Predictor = rapid.PredictGAPS // global sequentiality detector
	r := rapid.MustRun(cfg)
	fmt.Printf("hit ratio above 0.9: %v\n", r.HitRatio() > 0.9)
	// Output:
	// hit ratio above 0.9: true
}

// The FileSystem API embeds the substrates in user simulations, outside
// the paper's testbed.
func ExampleFileSystem() {
	k := rapid.NewKernel()
	fsys := rapid.MustNewFileSystem(k, rapid.FSOptions{
		Disks:           4,
		CacheFrames:     16,
		ReadaheadFrames: 8,
		Readahead:       2,
	})
	f, err := fsys.Create("dataset", 64)
	if err != nil {
		panic(err)
	}
	var last rapid.Duration
	k.Spawn("reader", 0, func(p *rapid.Proc) {
		h := f.OpenHandle(0)
		defer h.Close()
		for b := 0; b < 8; b++ {
			last = h.Read(p, b)
		}
	})
	k.Run()
	// With depth-2 readahead, later sequential reads hit the cache.
	fmt.Println(last < 30*rapid.Millisecond)
	// Output:
	// true
}
